// Tests: binary Byzantine agreement (MMR) and the Aleph-style DAG baseline.
#include <gtest/gtest.h>

#include <map>

#include "baselines/aleph/aleph.hpp"
#include "coin/dealer.hpp"
#include "coin/threshold_coin.hpp"
#include "rbc/factory.hpp"
#include "sim/adversary.hpp"
#include "sim/network.hpp"

namespace dr::baselines {
namespace {

class BbaHarness {
 public:
  BbaHarness(Committee c, std::uint64_t seed,
             std::unique_ptr<sim::DelayModel> delays = nullptr)
      : sim_(seed),
        net_(sim_, c,
             delays ? std::move(delays)
                    : std::make_unique<sim::UniformDelay>(1, 40)),
        dealer_(seed ^ 0xAB, c) {
    for (ProcessId p = 0; p < c.n; ++p) {
      coins_.push_back(std::make_unique<coin::ThresholdCoin>(
          net_, coin::ProcessCoinKey(&dealer_, p)));
      decisions_.emplace_back();
      bbas_.push_back(std::make_unique<BinaryAgreement>(
          net_, p, *coins_[p],
          [this, p](std::uint64_t instance, bool v) {
            decisions_[p][instance] = v;
          }));
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  coin::CoinDealer dealer_;
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins_;
  std::vector<std::unique_ptr<BinaryAgreement>> bbas_;
  std::vector<std::map<std::uint64_t, bool>> decisions_;
};

TEST(Bba, UnanimousInputsDecideThatValue) {
  for (bool input : {false, true}) {
    BbaHarness h(Committee::for_f(1), input ? 2 : 3);
    for (ProcessId p = 0; p < 4; ++p) h.bbas_[p]->propose(1, input);
    h.sim_.run();
    for (ProcessId p = 0; p < 4; ++p) {
      ASSERT_EQ(h.decisions_[p].count(1), 1u) << "p" << p;
      EXPECT_EQ(h.decisions_[p][1], input) << "validity violated";
    }
  }
}

TEST(Bba, MixedInputsAgreeOnSomeInput) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    BbaHarness h(Committee::for_f(1), seed * 13);
    for (ProcessId p = 0; p < 4; ++p) h.bbas_[p]->propose(1, p % 2 == 0);
    h.sim_.run();
    ASSERT_EQ(h.decisions_[0].count(1), 1u) << "seed " << seed;
    const bool v = h.decisions_[0][1];
    for (ProcessId p = 1; p < 4; ++p) {
      ASSERT_EQ(h.decisions_[p].count(1), 1u);
      EXPECT_EQ(h.decisions_[p][1], v) << "agreement violated, seed " << seed;
    }
  }
}

TEST(Bba, ToleratesFCrashes) {
  BbaHarness h(Committee::for_f(2), 7);  // n = 7
  h.net_.crash(5);
  h.net_.crash(6);
  for (ProcessId p = 0; p < 5; ++p) h.bbas_[p]->propose(1, p < 3);
  h.sim_.run();
  const bool v = h.decisions_[0][1];
  for (ProcessId p = 0; p < 5; ++p) {
    ASSERT_EQ(h.decisions_[p].count(1), 1u) << "p" << p;
    EXPECT_EQ(h.decisions_[p][1], v);
  }
}

TEST(Bba, ManyConcurrentInstances) {
  BbaHarness h(Committee::for_f(1), 9);
  for (std::uint64_t inst = 1; inst <= 20; ++inst) {
    for (ProcessId p = 0; p < 4; ++p) {
      h.bbas_[p]->propose(inst, (inst + p) % 3 == 0);
    }
  }
  h.sim_.run();
  for (std::uint64_t inst = 1; inst <= 20; ++inst) {
    ASSERT_EQ(h.decisions_[0].count(inst), 1u) << "instance " << inst;
    for (ProcessId p = 1; p < 4; ++p) {
      EXPECT_EQ(h.decisions_[p][inst], h.decisions_[0][inst]);
    }
  }
}

TEST(Bba, ExpectedConstantRounds) {
  double total = 0;
  int count = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    BbaHarness h(Committee::for_f(1), seed * 31);
    for (ProcessId p = 0; p < 4; ++p) h.bbas_[p]->propose(1, p % 2 == 0);
    h.sim_.run();
    if (h.bbas_[0]->decided(1)) {
      total += static_cast<double>(h.bbas_[0]->rounds_used(1));
      ++count;
    }
  }
  ASSERT_GT(count, 10);
  EXPECT_LT(total / count, 4.0);  // expected ~2 with a fair coin
}

TEST(Bba, ByzantineBvalFloodCannotForgeDecision) {
  // All correct propose 0; Byzantine process 3 floods BVAL/AUX(1). With only
  // f=1 BVAL(1) sender, 1 never enters bin_values and the decision stays 0.
  BbaHarness h(Committee::for_f(1), 11);
  h.net_.corrupt(3);
  for (ProcessId p = 0; p < 3; ++p) h.bbas_[p]->propose(1, false);
  for (ProcessId to = 0; to < 3; ++to) {
    ByteWriter bval;
    bval.u8(1);  // kBval
    bval.u64(1);
    bval.u64(1);
    bval.u8(1);
    h.net_.send(3, to, sim::Channel::kBba, std::move(bval).take());
    ByteWriter aux;
    aux.u8(2);  // kAux
    aux.u64(1);
    aux.u64(1);
    aux.u8(1);
    h.net_.send(3, to, sim::Channel::kBba, std::move(aux).take());
  }
  h.sim_.run();
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_EQ(h.decisions_[p].count(1), 1u);
    EXPECT_FALSE(h.decisions_[p][1]);
  }
}

TEST(Bba, ForgedDecideBelowQuorumIgnored) {
  BbaHarness h(Committee::for_f(1), 12);
  h.net_.corrupt(3);
  // A single Byzantine DECIDE(1) must not sway anyone (threshold is f+1=2).
  for (ProcessId to = 0; to < 3; ++to) {
    ByteWriter w;
    w.u8(3);  // kDecide
    w.u64(1);
    w.u8(1);
    h.net_.send(3, to, sim::Channel::kBba, std::move(w).take());
  }
  for (ProcessId p = 0; p < 3; ++p) h.bbas_[p]->propose(1, false);
  h.sim_.run();
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_EQ(h.decisions_[p].count(1), 1u);
    EXPECT_FALSE(h.decisions_[p][1]) << "forged DECIDE accepted!";
  }
}

// ---------------------------------------------------------------------------
// Aleph-style ordering.

class AlephHarness {
 public:
  AlephHarness(Committee c, std::uint64_t seed,
               std::unique_ptr<sim::DelayModel> delays = nullptr)
      : committee_(c),
        sim_(seed),
        net_(sim_, c,
             delays ? std::move(delays)
                    : std::make_unique<sim::UniformDelay>(1, 40)),
        dealer_(seed ^ 0xA1, c) {
    const auto factory = rbc::make_factory(rbc::RbcKind::kOracle);
    for (ProcessId p = 0; p < c.n; ++p) {
      rbcs_.push_back(factory(net_, p, seed));
      builders_.push_back(std::make_unique<dag::DagBuilder>(
          c, p, *rbcs_[p],
          dag::BuilderOptions{.auto_blocks = true, .auto_block_size = 8}));
      coins_.push_back(std::make_unique<coin::ThresholdCoin>(
          net_, coin::ProcessCoinKey(&dealer_, p)));
      orderers_.push_back(std::make_unique<AlephOrderer>(
          *builders_[p], net_, p, *coins_[p]));
      logs_.emplace_back();
      orderers_[p]->set_deliver(
          [this, p](const Bytes&, Round r, ProcessId source) {
            logs_[p].emplace_back(r, source);
          });
    }
  }

  void start() {
    for (auto& b : builders_) {
      if (!net_.is_crashed(b->pid())) b->start();
    }
  }

  Committee committee_;
  sim::Simulator sim_;
  sim::Network net_;
  coin::CoinDealer dealer_;
  std::vector<std::unique_ptr<rbc::ReliableBroadcast>> rbcs_;
  std::vector<std::unique_ptr<dag::DagBuilder>> builders_;
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins_;
  std::vector<std::unique_ptr<AlephOrderer>> orderers_;
  std::vector<std::vector<std::pair<Round, ProcessId>>> logs_;
};

TEST(Aleph, OrdersVerticesWithAgreement) {
  AlephHarness h(Committee::for_f(1), 5);
  h.start();
  ASSERT_TRUE(h.sim_.run_until(
      [&] {
        for (ProcessId p = 0; p < 4; ++p) {
          if (h.orderers_[p]->rounds_output() < 6) return false;
        }
        return true;
      },
      20'000'000));
  // Prefix agreement across processes.
  for (ProcessId p = 1; p < 4; ++p) {
    const std::size_t len = std::min(h.logs_[0].size(), h.logs_[p].size());
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(h.logs_[0][i], h.logs_[p][i]) << "divergence at " << i;
    }
  }
  // Rounds come out in order.
  for (std::size_t i = 1; i < h.logs_[0].size(); ++i) {
    EXPECT_LE(h.logs_[0][i - 1].first, h.logs_[0][i].first);
  }
}

TEST(Aleph, SlowProcessVerticesGetExcluded) {
  // The §7 claim: Aleph does not satisfy Validity. A process behind a slow
  // link misses the voting window; its slots decide 0 and its blocks are
  // dropped — in the SAME setting where DAG-Rider's weak edges keep them.
  AlephHarness h(Committee::for_f(1), 6,
                 std::make_unique<sim::FixedSetDelay>(std::vector<ProcessId>{3},
                                                      /*fast=*/30, /*slow=*/900));
  h.start();
  ASSERT_TRUE(h.sim_.run_until(
      [&] { return h.orderers_[0]->rounds_output() >= 8; }, 50'000'000));
  std::uint64_t from_slow = 0;
  for (const auto& [r, source] : h.logs_[0]) {
    from_slow += source == 3 ? 1 : 0;
  }
  EXPECT_EQ(from_slow, 0u) << "expected the slow process to be starved";
  EXPECT_GT(h.orderers_[0]->excluded_count(), 0u);
}

TEST(Aleph, ToleratesCrashedProcess) {
  AlephHarness h(Committee::for_f(1), 7);
  h.net_.crash(3);
  h.start();
  ASSERT_TRUE(h.sim_.run_until(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (h.orderers_[p]->rounds_output() < 5) return false;
        }
        return true;
      },
      20'000'000));
  for (ProcessId p = 1; p < 3; ++p) {
    const std::size_t len = std::min(h.logs_[0].size(), h.logs_[p].size());
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(h.logs_[0][i], h.logs_[p][i]);
    }
  }
}

}  // namespace
}  // namespace dr::baselines
