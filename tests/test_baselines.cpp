// Tests for the Table-1 baselines: VABA, AVID dispersal, Dumbo-MVBA, and
// the slot-parallel SMR driver (crash-fault model, per DESIGN.md §3).
#include <gtest/gtest.h>

#include <map>

#include "baselines/smr/slot_smr.hpp"
#include "rbc/avid_dispersal.hpp"
#include "sim/network.hpp"

namespace dr::baselines {
namespace {

/// Builds n VABA instances over a shared threshold coin.
class VabaHarness {
 public:
  VabaHarness(Committee c, std::uint64_t seed,
              std::unique_ptr<sim::DelayModel> delays = nullptr)
      : committee_(c),
        sim_(seed),
        net_(sim_, c,
             delays ? std::move(delays)
                    : std::make_unique<sim::UniformDelay>(1, 50)),
        dealer_(seed ^ 0xD, c) {
    for (ProcessId p = 0; p < c.n; ++p) {
      coins_.push_back(std::make_unique<coin::ThresholdCoin>(
          net_, coin::ProcessCoinKey(&dealer_, p)));
      decisions_.emplace_back();
      vabas_.push_back(std::make_unique<Vaba>(
          net_, p, *coins_[p],
          [this, p](SlotId slot, ProcessId proposer, const Bytes& value) {
            decisions_[p][slot] = {proposer, value};
          }));
    }
  }

  Committee committee_;
  sim::Simulator sim_;
  sim::Network net_;
  coin::CoinDealer dealer_;
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins_;
  std::vector<std::unique_ptr<Vaba>> vabas_;
  std::vector<std::map<SlotId, std::pair<ProcessId, Bytes>>> decisions_;
};

Bytes value_of(ProcessId p) { return Bytes{0x10, static_cast<std::uint8_t>(p)}; }

TEST(Vaba, AgreementAndTerminationFaultFree) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    VabaHarness h(Committee::for_f(1), seed);
    for (ProcessId p = 0; p < 4; ++p) h.vabas_[p]->propose(1, value_of(p));
    h.sim_.run();
    // Every process decided slot 1, on the same value.
    ASSERT_EQ(h.decisions_[0].count(1), 1u) << "seed " << seed;
    const Bytes& v0 = h.decisions_[0][1].second;
    for (ProcessId p = 1; p < 4; ++p) {
      ASSERT_EQ(h.decisions_[p].count(1), 1u);
      EXPECT_EQ(h.decisions_[p][1].second, v0) << "seed " << seed;
    }
    // The decided value is some process's actual proposal (validity).
    bool is_someones = false;
    for (ProcessId p = 0; p < 4; ++p) is_someones |= v0 == value_of(p);
    EXPECT_TRUE(is_someones);
  }
}

TEST(Vaba, ToleratesFCrashes) {
  VabaHarness h(Committee::for_f(2), 5);  // n = 7
  h.net_.crash(5);
  h.net_.crash(6);
  for (ProcessId p = 0; p < 5; ++p) h.vabas_[p]->propose(1, value_of(p));
  h.sim_.run();
  const Bytes& v0 = h.decisions_[0][1].second;
  for (ProcessId p = 0; p < 5; ++p) {
    ASSERT_EQ(h.decisions_[p].count(1), 1u) << "process " << p;
    EXPECT_EQ(h.decisions_[p][1].second, v0);
  }
}

TEST(Vaba, MultipleConcurrentSlotsStayIsolated) {
  VabaHarness h(Committee::for_f(1), 6);
  for (SlotId s = 1; s <= 5; ++s) {
    for (ProcessId p = 0; p < 4; ++p) {
      Bytes v = value_of(p);
      v.push_back(static_cast<std::uint8_t>(s));
      h.vabas_[p]->propose(s, std::move(v));
    }
  }
  h.sim_.run();
  for (SlotId s = 1; s <= 5; ++s) {
    ASSERT_EQ(h.decisions_[0].count(s), 1u);
    for (ProcessId p = 1; p < 4; ++p) {
      EXPECT_EQ(h.decisions_[p][s].second, h.decisions_[0][s].second);
    }
  }
}

TEST(Vaba, ExpectedConstantViews) {
  // Across seeds, the mean views-to-decide should be small (theory: < 3/2
  // against the strongest adversary; benign schedules land near 1).
  double total_views = 0;
  int runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    VabaHarness h(Committee::for_f(1), seed * 17);
    for (ProcessId p = 0; p < 4; ++p) h.vabas_[p]->propose(1, value_of(p));
    h.sim_.run();
    ASSERT_TRUE(h.vabas_[0]->decided(1));
    total_views += static_cast<double>(h.vabas_[0]->views_used(1));
    ++runs;
  }
  EXPECT_LT(total_views / runs, 2.5);
}

TEST(Vaba, AdversarialDelaysDoNotBlock) {
  VabaHarness h(Committee::for_f(1), 7,
                std::make_unique<sim::RotatingDelay>(4, 1, 300, 30, 400));
  for (ProcessId p = 0; p < 4; ++p) h.vabas_[p]->propose(1, value_of(p));
  h.sim_.run();
  for (ProcessId p = 0; p < 4; ++p) EXPECT_TRUE(h.vabas_[p]->decided(1));
}

// ---------------------------------------------------------------------------
// AVID dispersal.

class DispersalHarness {
 public:
  explicit DispersalHarness(Committee c, std::uint64_t seed = 1)
      : sim_(seed), net_(sim_, c, std::make_unique<sim::UniformDelay>(1, 30)) {
    for (ProcessId p = 0; p < c.n; ++p) {
      nodes_.push_back(std::make_unique<rbc::AvidDispersal>(net_, p));
    }
  }
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<rbc::AvidDispersal>> nodes_;
};

TEST(AvidDispersal, DisperseThenRetrieveFromAnyProcess) {
  DispersalHarness h(Committee::for_f(1));
  Bytes value(5000);
  Xoshiro256 rng(3);
  for (auto& b : value) b = static_cast<std::uint8_t>(rng());

  const crypto::Digest root = h.nodes_[0]->disperse(value);
  h.sim_.run();
  EXPECT_TRUE(h.nodes_[1]->is_available(root));

  std::map<ProcessId, Bytes> retrieved;
  for (ProcessId p = 0; p < 4; ++p) {
    h.nodes_[p]->retrieve(root, [&, p](const crypto::Digest&, Bytes v) {
      retrieved[p] = std::move(v);
    });
  }
  h.sim_.run();
  ASSERT_EQ(retrieved.size(), 4u);
  for (auto& [p, v] : retrieved) EXPECT_EQ(v, value) << "process " << p;
}

TEST(AvidDispersal, RetrievalWorksWithFCrashedHolders) {
  DispersalHarness h(Committee::for_f(2));  // n = 7, k = 3
  Bytes value(1000, 0x42);
  const crypto::Digest root = h.nodes_[0]->disperse(value);
  h.sim_.run();
  // Crash f holders AFTER dispersal; 2f+1 fragments remain.
  h.net_.crash(5);
  h.net_.crash(6);
  Bytes got;
  h.nodes_[4]->retrieve(root, [&](const crypto::Digest&, Bytes v) {
    got = std::move(v);
  });
  h.sim_.run();
  EXPECT_EQ(got, value);
}

TEST(AvidDispersal, DispersalBytesScaleSubQuadratically) {
  // Dispersing |v| bytes costs O(|v| + n log n), NOT O(n |v|): compare the
  // network bytes against the naive n*|v| floor.
  const Committee c = Committee::for_n(16);
  DispersalHarness h(c, 2);
  Bytes value(64'000, 0x7);
  h.nodes_[0]->disperse(value);
  h.sim_.run();
  const std::uint64_t bytes = h.net_.total_bytes_sent();
  EXPECT_LT(bytes, 16u * value.size() / 2)
      << "dispersal should not replicate the payload n times";
  EXPECT_GT(bytes, value.size());  // must at least carry the payload once
}

TEST(AvidDispersal, RetrieveBeforeFragmentsArriveStillCompletes) {
  DispersalHarness h(Committee::for_f(1), 5);
  Bytes value(300, 0x9);
  // Process 3 asks for the root before the dispersal has even started
  // propagating: pending requests must be served when fragments land.
  const crypto::Digest root = [&] {
    crypto::ReedSolomon rs(2, 2);
    return crypto::MerkleTree(rs.encode(value)).root();
  }();
  Bytes got;
  h.nodes_[3]->retrieve(root, [&](const crypto::Digest&, Bytes v) {
    got = std::move(v);
  });
  h.sim_.run();
  EXPECT_TRUE(got.empty());  // nothing to retrieve yet
  h.nodes_[0]->disperse(value);
  h.sim_.run();
  EXPECT_EQ(got, value);
}

// ---------------------------------------------------------------------------
// Dumbo-MVBA.

class DumboHarness {
 public:
  DumboHarness(Committee c, std::uint64_t seed)
      : sim_(seed),
        net_(sim_, c, std::make_unique<sim::UniformDelay>(1, 40)),
        dealer_(seed ^ 0xD, c) {
    for (ProcessId p = 0; p < c.n; ++p) {
      coins_.push_back(std::make_unique<coin::ThresholdCoin>(
          net_, coin::ProcessCoinKey(&dealer_, p)));
      decisions_.emplace_back();
      nodes_.push_back(std::make_unique<DumboMvba>(
          net_, p, *coins_[p],
          [this, p](SlotId slot, ProcessId proposer, const Bytes& value) {
            decisions_[p][slot] = {proposer, value};
          }));
    }
  }
  sim::Simulator sim_;
  sim::Network net_;
  coin::CoinDealer dealer_;
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins_;
  std::vector<std::unique_ptr<DumboMvba>> nodes_;
  std::vector<std::map<SlotId, std::pair<ProcessId, Bytes>>> decisions_;
};

TEST(Dumbo, DecidesOneProposersBatchEverywhere) {
  DumboHarness h(Committee::for_f(1), 3);
  std::vector<Bytes> batches;
  for (ProcessId p = 0; p < 4; ++p) {
    Bytes b(600, static_cast<std::uint8_t>(p + 1));
    batches.push_back(b);
    h.nodes_[p]->propose(1, std::move(b));
  }
  h.sim_.run();
  ASSERT_EQ(h.decisions_[0].count(1), 1u);
  const auto& [winner, value] = h.decisions_[0][1];
  EXPECT_EQ(value, batches[winner]);
  for (ProcessId p = 1; p < 4; ++p) {
    ASSERT_EQ(h.decisions_[p].count(1), 1u);
    EXPECT_EQ(h.decisions_[p][1].second, value);
    EXPECT_EQ(h.decisions_[p][1].first, winner);
  }
}

TEST(Dumbo, ToleratesFCrashes) {
  DumboHarness h(Committee::for_f(1), 4);
  h.net_.crash(3);
  for (ProcessId p = 0; p < 3; ++p) {
    h.nodes_[p]->propose(1, Bytes(200, static_cast<std::uint8_t>(p)));
  }
  h.sim_.run();
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_TRUE(h.nodes_[p]->decided(1)) << "process " << p;
    EXPECT_EQ(h.decisions_[p][1].second, h.decisions_[0][1].second);
  }
}

TEST(Dumbo, CheaperThanVabaOnLargeBatches) {
  // The whole point of Dumbo: with big batches, bytes/decision is far below
  // VABA's (which hauls full batches through every promotion step).
  const Committee c = Committee::for_n(10);
  const std::size_t batch = 20'000;

  VabaHarness hv(c, 9);
  for (ProcessId p = 0; p < c.n; ++p) {
    hv.vabas_[p]->propose(1, Bytes(batch, static_cast<std::uint8_t>(p)));
  }
  hv.sim_.run();
  const std::uint64_t vaba_bytes = hv.net_.total_bytes_sent();

  DumboHarness hd(c, 9);
  for (ProcessId p = 0; p < c.n; ++p) {
    hd.nodes_[p]->propose(1, Bytes(batch, static_cast<std::uint8_t>(p)));
  }
  hd.sim_.run();
  const std::uint64_t dumbo_bytes = hd.net_.total_bytes_sent();

  ASSERT_TRUE(hd.nodes_[0]->decided(1));
  EXPECT_LT(dumbo_bytes * 3, vaba_bytes)
      << "dumbo=" << dumbo_bytes << " vaba=" << vaba_bytes;
}

// ---------------------------------------------------------------------------
// Slot-parallel SMR driver.

TEST(SlotSmr, OutputsInOrderWithAgreement) {
  for (SmrBackend backend : {SmrBackend::kVaba, SmrBackend::kDumbo}) {
    SmrSystemConfig cfg;
    cfg.committee = Committee::for_f(1);
    cfg.seed = 77;
    cfg.backend = backend;
    cfg.batch_size = 128;
    SmrSystem sys(std::move(cfg));
    sys.start();
    ASSERT_TRUE(sys.run_until_output(8)) << to_string(backend);
    for (ProcessId p = 0; p < 4; ++p) {
      const auto& outs = sys.node(p).outputs();
      ASSERT_GE(outs.size(), 8u);
      for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(outs[i].slot, i + 1);  // in order, no gaps
        EXPECT_EQ(outs[i].batch_digest, sys.node(0).outputs()[i].batch_digest);
        EXPECT_EQ(outs[i].proposer, sys.node(0).outputs()[i].proposer);
      }
    }
  }
}

TEST(SlotSmr, SurvivesCrashFault) {
  SmrSystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 78;
  cfg.backend = SmrBackend::kVaba;
  cfg.crashed = {3};
  SmrSystem sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_output(5));
}

TEST(SlotSmr, DropsSomeCorrectProposals) {
  // The fairness gap of Table 1: only one proposer wins each slot, so some
  // correct processes' batches are never ordered (no eventual fairness) —
  // in contrast to DAG-Rider where every proposal lands.
  SmrSystemConfig cfg;
  cfg.committee = Committee::for_f(2);  // n = 7
  cfg.seed = 79;
  cfg.backend = SmrBackend::kVaba;
  SmrSystem sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_output(10));
  // Count how many of the 7*10 proposals made it: exactly 10 (one/slot).
  const auto& outs = sys.node(0).outputs();
  std::set<std::pair<SlotId, ProcessId>> winners;
  for (std::size_t i = 0; i < 10; ++i) {
    winners.emplace(outs[i].slot, outs[i].proposer);
  }
  EXPECT_EQ(winners.size(), 10u);
  // 7 proposals per slot, 1 winner: 60 of 70 proposals dropped.
}

}  // namespace
}  // namespace dr::baselines
