// Client ingress tier tests (DESIGN.md §13): tx digest identity, the wire
// codec's defensive parsing, the sharded mempool's admission pipeline
// (dedup, backpressure, commit window, origin re-homing), the TCP
// server/client pair end to end, commit acks through a live cluster, the
// kill-restart dedup contract after WAL recovery, the seeded ingress soak,
// and a loadgen smoke with thousands of logical clients.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include "core/audit.hpp"
#include "ingress/client.hpp"
#include "ingress/loadgen.hpp"
#include "ingress/mempool.hpp"
#include "ingress/server.hpp"
#include "ingress/wire.hpp"
#include "node/cluster.hpp"
#include "node/soak.hpp"
#include "txpool/transaction.hpp"

namespace dr::ingress {
namespace {

txpool::Transaction make_tx(std::uint64_t client_id, std::uint64_t tx_id,
                            std::uint8_t fill = 0xab, std::size_t size = 24) {
  txpool::Transaction tx;
  tx.id = compose_tx_id(client_id, tx_id);
  tx.submit_time = 0;
  tx.payload = Bytes(size, fill);
  return tx;
}

std::string fresh_dir(const std::string& name) {
  const char* env = std::getenv("TEST_TMPDIR");
  const std::string base = env != nullptr ? env : testing::TempDir();
  const std::string dir = base + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Pumps `client` until `done()` or the deadline; fails the test on timeout.
void pump_until(Client& client, const std::function<bool()>& done,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "client pump timed out";
    client.process(5);
  }
}

// --- tx digest identity ---

TEST(TxDigest, ExcludesServerStampedSubmitTime) {
  txpool::Transaction a = make_tx(7, 1);
  txpool::Transaction b = make_tx(7, 1);
  a.submit_time = 111;
  b.submit_time = 999'999;  // resubmission stamped much later
  EXPECT_EQ(tx_digest(a), tx_digest(b));
}

TEST(TxDigest, SensitiveToIdAndPayload) {
  const txpool::Transaction base = make_tx(7, 1);
  txpool::Transaction other_id = make_tx(7, 2);
  txpool::Transaction other_payload = make_tx(7, 1, 0xcd);
  EXPECT_NE(tx_digest(base), tx_digest(other_id));
  EXPECT_NE(tx_digest(base), tx_digest(other_payload));
}

TEST(TxDigest, ComposeTxIdIsDeterministicAndSpreads) {
  EXPECT_EQ(compose_tx_id(3, 9), compose_tx_id(3, 9));
  EXPECT_NE(compose_tx_id(3, 9), compose_tx_id(9, 3));
  EXPECT_NE(compose_tx_id(0, 0), compose_tx_id(0, 1));
}

TEST(TxDigest, LoadgenPayloadRegeneratesByteIdentically) {
  const Bytes a = loadgen_payload(42, 17, 64);
  const Bytes b = loadgen_payload(42, 17, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_NE(a, loadgen_payload(42, 18, 64));
  // Minimum size carries the two ids.
  EXPECT_EQ(loadgen_payload(1, 2, 0).size(), 16u);
}

// --- wire codec ---

TEST(IngressWire, HelloRoundTrip) {
  const Bytes ch = encode_client_hello(ClientHello{});
  ASSERT_EQ(ch.size(), kClientHelloBytes);
  const auto got = decode_client_hello(BytesView(ch));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().magic, kIngressMagic);

  ServerHello sh;
  sh.status = HelloStatus::kOk;
  sh.session_id = 77;
  const Bytes enc = encode_server_hello(sh);
  ASSERT_EQ(enc.size(), kServerHelloBytes);
  const auto back = decode_server_hello(BytesView(enc));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().session_id, 77u);
  EXPECT_EQ(back.value().status, HelloStatus::kOk);
}

TEST(IngressWire, HelloRejectsBadMagicAndVersion) {
  Bytes ch = encode_client_hello(ClientHello{});
  ch[0] ^= 0xff;
  EXPECT_FALSE(decode_client_hello(BytesView(ch)).ok());

  ClientHello v2;
  v2.version = 2;
  EXPECT_FALSE(decode_client_hello(BytesView(encode_client_hello(v2))).ok());
  EXPECT_FALSE(decode_client_hello(BytesView()).ok());
}

TEST(IngressWire, MessageRoundTrips) {
  SubmitBatch batch;
  batch.client_id = 5;
  batch.txs.push_back(TxSubmit{1, Bytes{0x01, 0x02}});
  batch.txs.push_back(TxSubmit{2, Bytes{}});
  const auto b = decode_ingress_message(BytesView(encode_submit_batch(batch)));
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value().batch.has_value());
  EXPECT_EQ(b.value().batch->client_id, 5u);
  ASSERT_EQ(b.value().batch->txs.size(), 2u);
  EXPECT_EQ(b.value().batch->txs[0].payload, (Bytes{0x01, 0x02}));

  SubmitReply reply;
  reply.client_id = 5;
  reply.entries.push_back(ReplyEntry{1, SubmitStatus::kAccepted});
  reply.entries.push_back(ReplyEntry{2, SubmitStatus::kShardFull});
  const auto r = decode_ingress_message(BytesView(encode_submit_reply(reply)));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().reply.has_value());
  EXPECT_EQ(r.value().reply->entries[1].status, SubmitStatus::kShardFull);

  CommitAcks acks;
  acks.acks.push_back(AckEntry{5, 1, 1234});
  const auto a = decode_ingress_message(BytesView(encode_commit_acks(acks)));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a.value().acks.has_value());
  EXPECT_EQ(a.value().acks->acks[0].latency_us, 1234u);
}

TEST(IngressWire, MessageRejectsMalformedInput) {
  // Unknown tag.
  EXPECT_FALSE(decode_ingress_message(BytesView(Bytes{0x09})).ok());
  // Empty input.
  EXPECT_FALSE(decode_ingress_message(BytesView()).ok());

  SubmitBatch batch;
  batch.client_id = 1;
  batch.txs.push_back(TxSubmit{1, Bytes{0xaa}});
  Bytes enc = encode_submit_batch(batch);
  // Truncation at every split point must fail crisply.
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(
        decode_ingress_message(BytesView(enc.data(), cut)).ok())
        << "cut=" << cut;
  }
  // Trailing garbage.
  Bytes trailing = enc;
  trailing.push_back(0x00);
  EXPECT_FALSE(decode_ingress_message(BytesView(trailing)).ok());

  // Invalid status byte inside a reply.
  SubmitReply reply;
  reply.client_id = 1;
  reply.entries.push_back(ReplyEntry{1, SubmitStatus::kAccepted});
  Bytes renc = encode_submit_reply(reply);
  renc.back() = 0x77;
  EXPECT_FALSE(decode_ingress_message(BytesView(renc)).ok());
}

// --- sharded mempool admission pipeline ---

TEST(ShardedMempool, DedupAcrossShardsAndLifecycle) {
  ShardedMempool pool(MempoolOptions{.shards = 4});
  // A spread of txs lands on every shard; resubmitting any of them dedups
  // no matter which shard owns the digest.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(pool.submit(make_tx(1, i), TxOrigin{}), SubmitStatus::kAccepted);
    EXPECT_EQ(pool.submit(make_tx(1, i), TxOrigin{}),
              SubmitStatus::kDuplicatePending);
  }
  EXPECT_EQ(pool.pending(), 64u);

  // Drained txs stay deduped (in-flight), and commit moves them into the
  // recently-committed window.
  const auto drained = pool.drain(64);
  ASSERT_EQ(drained.size(), 64u);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.in_flight(), 64u);
  EXPECT_EQ(pool.submit(make_tx(1, 0), TxOrigin{}),
            SubmitStatus::kDuplicatePending);
  for (const auto& tx : drained) {
    EXPECT_FALSE(pool.mark_committed(tx_digest(tx)).has_value());  // no origin
  }
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.submit(make_tx(1, 0), TxOrigin{}),
            SubmitStatus::kDuplicateCommitted);
  EXPECT_TRUE(pool.recently_committed(tx_digest(make_tx(1, 0))));
}

TEST(ShardedMempool, ReturnsOriginOnCommitAndRehomesOnResubmit) {
  ShardedMempool pool(MempoolOptions{.shards = 2});
  TxOrigin origin{.session_id = 10, .client_id = 3, .tx_id = 9,
                  .submit_us = 100};
  ASSERT_EQ(pool.submit(make_tx(3, 9), origin), SubmitStatus::kAccepted);

  // Reconnected client (new session 20) resubmits the same logical tx: the
  // stored origin re-homes so the eventual ack follows the client.
  TxOrigin rehomed{.session_id = 20, .client_id = 3, .tx_id = 9,
                   .submit_us = 200};
  ASSERT_EQ(pool.submit(make_tx(3, 9), rehomed),
            SubmitStatus::kDuplicatePending);

  const auto got = pool.mark_committed(tx_digest(make_tx(3, 9)));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->session_id, 20u);
  EXPECT_EQ(got->client_id, 3u);
  EXPECT_EQ(got->tx_id, 9u);
  // A second commit of the same digest is foreign (already in the window).
  EXPECT_FALSE(pool.mark_committed(tx_digest(make_tx(3, 9))).has_value());
}

TEST(ShardedMempool, BusyWatermarkThenShardCapacity) {
  MempoolOptions opts;
  opts.shards = 2;
  opts.shard_capacity = 64;
  opts.busy_watermark = 0.5;  // busy at 64 pending
  ShardedMempool pool(opts);

  std::uint64_t accepted = 0, id = 0;
  while (accepted < 64) {
    if (pool.submit(make_tx(1, id++), TxOrigin{}) == SubmitStatus::kAccepted) {
      ++accepted;
    }
  }
  EXPECT_EQ(pool.submit(make_tx(1, id), TxOrigin{}), SubmitStatus::kBusy);
  EXPECT_TRUE(pool.busy());
  EXPECT_GE(pool.stats().rejected_busy, 1u);

  // The hard per-shard bound is kShardFull, distinguishable from kBusy:
  // reachable with a watermark above 1.0 (disabled) and a tiny shard.
  MempoolOptions tiny;
  tiny.shards = 1;
  tiny.shard_capacity = 4;
  tiny.busy_watermark = 10.0;
  ShardedMempool small(tiny);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(small.submit(make_tx(2, i), TxOrigin{}),
              SubmitStatus::kAccepted);
  }
  EXPECT_EQ(small.submit(make_tx(2, 99), TxOrigin{}),
            SubmitStatus::kShardFull);
}

TEST(ShardedMempool, RejectsOversizedAndBoundsCommittedWindow) {
  MempoolOptions opts;
  opts.shards = 1;
  opts.max_tx_bytes = 32;
  opts.committed_window = 8;
  ShardedMempool pool(opts);

  EXPECT_EQ(pool.submit(make_tx(1, 0, 0xab, 33), TxOrigin{}),
            SubmitStatus::kTooLarge);

  // Push far more commits through than the window holds: the oldest digests
  // are evicted and a very late replay is re-accepted (the documented bound).
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_EQ(pool.submit(make_tx(1, i), TxOrigin{}), SubmitStatus::kAccepted);
    (void)pool.drain(1);
    (void)pool.mark_committed(tx_digest(make_tx(1, i)));
  }
  EXPECT_GE(pool.stats().window_evictions, 24u);
  EXPECT_FALSE(pool.recently_committed(tx_digest(make_tx(1, 0))));
  EXPECT_TRUE(pool.recently_committed(tx_digest(make_tx(1, 31))));
  EXPECT_EQ(pool.submit(make_tx(1, 0), TxOrigin{}), SubmitStatus::kAccepted);
}

TEST(ShardedMempool, DrainIsRoundRobinAndBounded) {
  ShardedMempool pool(MempoolOptions{.shards = 4});
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(pool.submit(make_tx(1, i), TxOrigin{}), SubmitStatus::kAccepted);
  }
  std::size_t total = 0;
  while (true) {
    const auto got = pool.drain(7);
    EXPECT_LE(got.size(), 7u);
    if (got.empty()) break;
    total += got.size();
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(pool.in_flight(), 100u);
}

// --- server + client end to end (standalone, no consensus) ---

TEST(IngressServer, SubmitReplyAndCommitAckRoundTrip) {
  ShardedMempool pool;
  IngressServer server(pool, ServerOptions{});
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  Client client(Client::Options{"127.0.0.1", server.port(), 256});
  ASSERT_TRUE(client.connect(2'000));
  EXPECT_NE(client.session_id(), 0u);

  std::unordered_map<std::uint64_t, SubmitStatus> replies;
  std::uint64_t reply_count = 0, acks = 0;
  client.on_reply = [&](std::uint64_t, std::uint64_t tx_id,
                        SubmitStatus status) {
    ++reply_count;
    replies[tx_id] = status;  // the dup's verdict overwrites tx 0's
  };
  client.on_ack = [&](std::uint64_t, std::uint64_t, std::uint64_t) {
    ++acks;
  };

  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.submit(4, i, BytesView(loadgen_payload(4, i, 32))));
  }
  ASSERT_TRUE(client.submit(4, 0, BytesView(loadgen_payload(4, 0, 32))));

  pump_until(client, [&] { return reply_count == 9; },
             std::chrono::seconds(5));
  for (std::uint64_t i = 1; i < 8; ++i) {
    EXPECT_EQ(replies[i], SubmitStatus::kAccepted);
  }
  // The duplicate resubmission of tx 0 re-homed onto this same session.
  EXPECT_EQ(replies[0], SubmitStatus::kDuplicatePending);

  // Play the node thread: drain, "commit", route acks back.
  const auto drained = pool.drain(64);
  ASSERT_EQ(drained.size(), 8u);
  for (const auto& tx : drained) {
    const auto origin = pool.mark_committed(tx_digest(tx));
    ASSERT_TRUE(origin.has_value());
    server.complete(*origin);
  }
  pump_until(client, [&] { return acks == 8; }, std::chrono::seconds(5));
  EXPECT_GT(server.ack_latency().total(), 0u);

  client.close();
  server.stop();
}

TEST(IngressServer, BusyHookTurnsBatchesAway) {
  ShardedMempool pool;
  IngressServer server(pool, ServerOptions{});
  server.set_busy_hook([] { return true; });  // DagBuilder "very behind"
  ASSERT_TRUE(server.start());

  Client client(Client::Options{"127.0.0.1", server.port(), 256});
  ASSERT_TRUE(client.connect(2'000));
  std::uint64_t busy = 0;
  client.on_reply = [&](std::uint64_t, std::uint64_t, SubmitStatus status) {
    if (status == SubmitStatus::kBusy) ++busy;
  };
  ASSERT_TRUE(client.submit(1, 1, BytesView(loadgen_payload(1, 1, 32))));
  pump_until(client, [&] { return busy == 1; }, std::chrono::seconds(5));
  EXPECT_EQ(pool.pending(), 0u);

  client.close();
  server.stop();
}

TEST(IngressServer, RejectsOverCapacitySessionsWithFullHello) {
  ShardedMempool pool;
  ServerOptions opts;
  opts.max_sessions = 1;
  IngressServer server(pool, opts);
  ASSERT_TRUE(server.start());

  Client first(Client::Options{"127.0.0.1", server.port(), 256});
  ASSERT_TRUE(first.connect(2'000));
  Client second(Client::Options{"127.0.0.1", server.port(), 256});
  EXPECT_FALSE(second.connect(2'000));  // kFull hello, then close

  first.close();
  server.stop();
}

// --- commit acks through a live cluster ---

TEST(IngressCluster, ClientTxsCommitAndAckThroughNode) {
  node::NodeOptions opts;
  opts.seed = 99;
  opts.ingress_enable = true;
  node::Cluster cluster(Committee::for_n(4), opts);
  cluster.start();
  ASSERT_NE(cluster.ingress_port(0), 0);

  Client client(Client::Options{"127.0.0.1", cluster.ingress_port(0), 256});
  ASSERT_TRUE(client.connect(2'000));

  constexpr std::uint64_t kTxs = 200;
  std::uint64_t acked = 0;
  client.on_ack = [&](std::uint64_t, std::uint64_t, std::uint64_t) {
    ++acked;
  };
  for (std::uint64_t i = 0; i < kTxs; ++i) {
    ASSERT_TRUE(client.submit(6, i, BytesView(loadgen_payload(6, i, 32))));
  }
  pump_until(client, [&] { return acked == kTxs; }, std::chrono::minutes(1));
  client.close();
  cluster.stop();

  EXPECT_FALSE(core::audit_logs(cluster.delivered_logs(),
                                cluster.commit_logs())
                   .has_value());
}

// --- kill-restart: the WAL-recovery dedup contract ---

TEST(IngressCluster, RestartedNodeDedupsCommittedAndServesFreshTxs) {
  const std::string wal = fresh_dir("ingress-restart");
  node::NodeOptions opts;
  opts.seed = 7;
  opts.ingress_enable = true;
  opts.wal_dir = wal;
  node::Cluster cluster(Committee::for_n(4), opts);

  // Tally every committed tx id at surviving node 0: the exactly-once
  // assertion at the end is the "no double commit after recovery" check.
  std::mutex tally_mu;
  std::unordered_map<std::uint64_t, std::uint64_t> tally;
  cluster.node(0).set_app_deliver(
      [&](const Bytes& block, Round, ProcessId, std::uint64_t) {
        if (auto txs = txpool::decode_block(BytesView(block))) {
          std::lock_guard<std::mutex> lk(tally_mu);
          for (const auto& tx : txs.value()) ++tally[tx.id];
        }
      });
  cluster.start();

  const std::uint16_t port = cluster.ingress_port(1);
  ASSERT_NE(port, 0);
  constexpr std::uint64_t kBatchA = 100;
  constexpr std::uint64_t kBatchB = 100;

  {  // Batch A: submit through node 1 and wait until fully committed.
    Client client(Client::Options{"127.0.0.1", port, 256});
    ASSERT_TRUE(client.connect(2'000));
    std::uint64_t acked = 0;
    client.on_ack = [&](std::uint64_t, std::uint64_t, std::uint64_t) {
      ++acked;
    };
    for (std::uint64_t i = 0; i < kBatchA; ++i) {
      ASSERT_TRUE(client.submit(8, i, BytesView(loadgen_payload(8, i, 32))));
    }
    pump_until(client, [&] { return acked == kBatchA; },
               std::chrono::minutes(1));
    client.close();
  }

  const std::uint64_t delivered_before =
      cluster.node(1).delivered_count();
  cluster.stop_node(1);
  cluster.restart_node(1);
  // Same pre-picked port after restart — clients redial what they know.
  ASSERT_EQ(cluster.ingress_port(1), port);
  // Let WAL replay finish before the client comes back: recovery re-runs
  // the deliver path, which rebuilds the recently-committed window.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::minutes(1);
  while (cluster.node(1).delivered_count() < delivered_before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "restarted node did not recover its delivered log";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  {  // Reconnect: resubmit all of batch A, then submit fresh batch B.
    Client client(Client::Options{"127.0.0.1", port, 256});
    ASSERT_TRUE(client.connect(5'000));
    std::uint64_t dup_committed = 0, acked = 0;
    client.on_reply = [&](std::uint64_t, std::uint64_t,
                          SubmitStatus status) {
      if (status == SubmitStatus::kDuplicateCommitted) ++dup_committed;
    };
    client.on_ack = [&](std::uint64_t, std::uint64_t, std::uint64_t) {
      ++acked;
    };
    for (std::uint64_t i = 0; i < kBatchA; ++i) {
      ASSERT_TRUE(client.submit(8, i, BytesView(loadgen_payload(8, i, 32))));
    }
    // Every resubmit must bounce off the recovered committed window.
    pump_until(client, [&] { return dup_committed == kBatchA; },
               std::chrono::minutes(1));

    for (std::uint64_t i = 0; i < kBatchB; ++i) {
      ASSERT_TRUE(client.submit(9, i, BytesView(loadgen_payload(9, i, 32))));
    }
    pump_until(client, [&] { return acked == kBatchB; },
               std::chrono::minutes(1));
    client.close();
  }

  cluster.stop();
  EXPECT_FALSE(core::audit_logs(cluster.delivered_logs(),
                                cluster.commit_logs())
                   .has_value());
  std::lock_guard<std::mutex> lk(tally_mu);
  std::uint64_t batch_a_seen = 0, batch_b_seen = 0;
  for (const auto& [id, count] : tally) {
    EXPECT_EQ(count, 1u) << "tx " << id << " committed " << count
                         << " times";
  }
  for (std::uint64_t i = 0; i < kBatchA; ++i) {
    batch_a_seen += tally.count(compose_tx_id(8, i));
  }
  for (std::uint64_t i = 0; i < kBatchB; ++i) {
    batch_b_seen += tally.count(compose_tx_id(9, i));
  }
  EXPECT_EQ(batch_a_seen, kBatchA);
  EXPECT_EQ(batch_b_seen, kBatchB);
  std::filesystem::remove_all(wal);
}

// --- kill-restart: the at-least-once race on restored proposals ---

// ROADMAP item 1 (closed by this test's fix): a client tx drained into a
// proposal that was WAL'd but never disseminated — staged here with a mute
// proposer, whose persist-before-send logging runs but whose broadcasts are
// swallowed — is invisible to the cluster, so the client resubmits after
// the node restarts. Before the fix the restarted node's empty mempool
// re-accepted the resubmission into a second block while WAL replay
// re-broadcast the original proposal: the same logical tx a_delivered
// twice. Recovery now seeds the mempool's in-flight set from restored
// undelivered proposals, so the resubmission dedups against the in-WAL
// copy and the commit tally stays exactly-once.
TEST(IngressCluster, ResubmitAfterRestartOfMuteProposerDeliversExactlyOnce) {
  const std::string wal = fresh_dir("ingress-restart-race");
  node::NodeOptions opts;
  opts.seed = 13;
  opts.ingress_enable = true;
  opts.wal_dir = wal;
  node::ClusterTweaks tweaks;
  tweaks.profiles.assign(4, node::ByzantineProfile::kHonest);
  tweaks.profiles[1] = node::ByzantineProfile::kMute;
  node::Cluster cluster(Committee::for_n(4), opts, tweaks);

  // Exactly-once tally at honest node 0, keyed by logical tx id.
  std::mutex tally_mu;
  std::unordered_map<std::uint64_t, std::uint64_t> tally;
  cluster.node(0).set_app_deliver(
      [&](const Bytes& block, Round, ProcessId, std::uint64_t) {
        if (auto txs = txpool::decode_block(BytesView(block))) {
          std::lock_guard<std::mutex> lk(tally_mu);
          for (const auto& tx : txs.value()) ++tally[tx.id];
        }
      });
  cluster.start();

  const std::uint16_t port = cluster.ingress_port(1);
  ASSERT_NE(port, 0);
  constexpr std::uint64_t kProbe = 10;

  {  // Submit probes through the mute node: accepted, drained into a WAL'd
     // proposal, never disseminated.
    Client client(Client::Options{"127.0.0.1", port, 256});
    ASSERT_TRUE(client.connect(2'000));
    std::uint64_t accepted = 0;
    client.on_reply = [&](std::uint64_t, std::uint64_t,
                          SubmitStatus status) {
      if (status == SubmitStatus::kAccepted) ++accepted;
    };
    for (std::uint64_t i = 0; i < kProbe; ++i) {
      ASSERT_TRUE(client.submit(21, i, BytesView(loadgen_payload(21, i, 32))));
    }
    pump_until(client, [&] { return accepted == kProbe; },
               std::chrono::minutes(1));
    // Drained (in-flight), then proposed (persist-before-send ran): the
    // race precondition — on disk, in no one's DAG. The drained block sits
    // at most max_blocks_pending (2) deep in the proposal queue, so two
    // more logged proposals guarantee it reached the WAL.
    pump_until(client,
               [&] { return cluster.node(1).mempool().in_flight() >= kProbe; },
               std::chrono::minutes(1));
    const std::uint64_t proposals_at_drain =
        cluster.node(1).proposals_logged();
    pump_until(client,
               [&] {
                 return cluster.node(1).proposals_logged() >=
                        proposals_at_drain + 2;
               },
               std::chrono::minutes(1));
    client.close();
  }
  // None of the probe txs may be delivered anywhere while the proposer is
  // mute (its broadcasts are swallowed).
  {
    std::lock_guard<std::mutex> lk(tally_mu);
    for (std::uint64_t i = 0; i < kProbe; ++i) {
      ASSERT_EQ(tally.count(compose_tx_id(21, i)), 0u);
    }
  }

  cluster.stop_node(1);
  cluster.set_profile(1, node::ByzantineProfile::kHonest);
  cluster.restart_node(1);
  ASSERT_EQ(cluster.ingress_port(1), port);
  // The fix's mechanism: recovery (on the node thread) re-registers the
  // WAL'd-but-undelivered probe txs as in-flight before the builder goes
  // live. Poll: restart_node returns as soon as the thread is spawned.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(1);
    while (cluster.node(1).mempool().stats().restored_in_flight < kProbe) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "recovery did not seed the mempool's in-flight set";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  {  // Reconnect and resubmit every probe: must dedup, never re-enter.
    Client client(Client::Options{"127.0.0.1", port, 256});
    ASSERT_TRUE(client.connect(5'000));
    std::uint64_t replies = 0, reaccepted = 0, acked = 0;
    client.on_reply = [&](std::uint64_t, std::uint64_t,
                          SubmitStatus status) {
      ++replies;
      if (status == SubmitStatus::kAccepted) ++reaccepted;
    };
    client.on_ack = [&](std::uint64_t, std::uint64_t, std::uint64_t) {
      ++acked;
    };
    for (std::uint64_t i = 0; i < kProbe; ++i) {
      ASSERT_TRUE(client.submit(21, i, BytesView(loadgen_payload(21, i, 32))));
    }
    pump_until(client, [&] { return replies == kProbe; },
               std::chrono::minutes(1));
    EXPECT_EQ(reaccepted, 0u)
        << "resubmission re-accepted while the restored proposal still "
           "holds the tx (double-delivery race)";

    // The now-honest node re-broadcasts the restored proposal; every probe
    // commits (exactly once, checked below) without any re-admission.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(1);
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(tally_mu);
        std::uint64_t seen = 0;
        for (std::uint64_t i = 0; i < kProbe; ++i) {
          seen += tally.count(compose_tx_id(21, i));
        }
        if (seen == kProbe) break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restored proposal never delivered after restart";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Fresh traffic through the recovered node stays live end to end.
    for (std::uint64_t i = 0; i < kProbe; ++i) {
      ASSERT_TRUE(client.submit(22, i, BytesView(loadgen_payload(22, i, 32))));
    }
    pump_until(client, [&] { return acked >= kProbe; },
               std::chrono::minutes(1));
    client.close();
  }

  cluster.stop();
  EXPECT_FALSE(core::audit_logs(cluster.delivered_logs(),
                                cluster.commit_logs())
                   .has_value());
  std::lock_guard<std::mutex> lk(tally_mu);
  for (const auto& [id, count] : tally) {
    EXPECT_EQ(count, 1u) << "tx " << id << " committed " << count
                         << " times";
  }
  std::filesystem::remove_all(wal);
}

// --- seeded soak + loadgen smoke ---

TEST(IngressSoak, SeededChaosSweepWithClientChurnStaysClean) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    node::SoakOptions opts;
    opts.seed = seed;
    opts.n = 4;
    opts.target_delivered = 12;
    opts.timeout = std::chrono::minutes(2);
    opts.with_ingress = true;
    opts.ingress_clients = 500;
    opts.ingress_rate_tps = 800.0;
    opts.ingress_churn_period_ms = 100;
    const node::SoakResult r = node::run_chaos_soak(opts);
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_GT(r.ingress_acked, 0u) << "seed " << seed;
  }
}

TEST(IngressLoadGen, ThousandsOfClientsOverFewConnections) {
  node::NodeOptions opts;
  opts.seed = 5;
  opts.ingress_enable = true;
  node::Cluster cluster(Committee::for_n(4), opts);
  cluster.start();

  LoadGenOptions gen_opts;
  gen_opts.clients = 2'000;
  gen_opts.connections = 16;
  for (ProcessId pid = 0; pid < 4; ++pid) {
    gen_opts.targets.push_back(
        LoadGenTarget{"127.0.0.1", cluster.ingress_port(pid)});
  }
  gen_opts.duration_ms = 2'000;
  gen_opts.rate_tps = 2'000.0;
  gen_opts.churn_period_ms = 300;
  gen_opts.seed = 11;
  LoadGen gen(gen_opts);
  ASSERT_TRUE(gen.start());
  const LoadGenReport report = gen.wait_and_report();
  cluster.stop();

  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.submitted, 1'000u);
  EXPECT_GT(report.acked, report.submitted / 2);
  EXPECT_GT(report.churn_events, 0u);
  EXPECT_GT(report.ack_latency_ms.count(), 0u);
  EXPECT_FALSE(core::audit_logs(cluster.delivered_logs(),
                                cluster.commit_logs())
                   .has_value());
}

}  // namespace
}  // namespace dr::ingress
