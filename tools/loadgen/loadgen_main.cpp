// Standalone ingress load generator (DESIGN.md §13): drives the TCP
// tx-submission front end with an open-loop, Zipf-skewed population of
// simulated clients and prints the resulting admission/ack report.
//
// Two modes:
//   loadgen --targets host:port[,host:port...]   # external ingress endpoints
//   loadgen --self-cluster N                     # spin an in-process n=N
//                                                # ingress-enabled cluster
//                                                # and aim at it (smoke/CI)
//
// Shared knobs:
//   --clients K       logical client population       (default 10000)
//   --connections C   real TCP conns multiplexed over (default 64)
//   --rate TPS        aggregate open-loop arrival rate (default 10000)
//   --duration MS     run window in milliseconds       (default 5000)
//   --payload BYTES   tx payload size, >= 16           (default 32)
//   --zipf S          Zipf exponent, 0 = uniform       (default 1.0)
//   --churn MS        close+redial one conn every MS   (default 0 = off)
//   --seed S          loadgen RNG seed                 (default 1)
//
// Exit status: 0 when the run completed and at least one ack arrived,
// 1 otherwise — so CI smoke invocations fail loudly on a dead ingress path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "ingress/loadgen.hpp"
#include "node/cluster.hpp"

namespace {

struct Args {
  std::vector<dr::ingress::LoadGenTarget> targets;
  std::uint32_t self_cluster_n = 0;  // != 0: in-process cluster mode
  dr::ingress::LoadGenOptions gen;
};

void usage_and_exit(const char* msg) {
  std::fprintf(stderr, "loadgen: %s\n", msg);
  std::fprintf(stderr,
               "usage: loadgen (--targets h:p[,h:p...] | --self-cluster N)\n"
               "  [--clients K] [--connections C] [--rate TPS]\n"
               "  [--duration MS] [--payload BYTES] [--zipf S]\n"
               "  [--churn MS] [--seed S]\n");
  std::exit(2);
}

std::vector<dr::ingress::LoadGenTarget> parse_targets(const char* arg) {
  std::vector<dr::ingress::LoadGenTarget> out;
  const std::string spec(arg);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon + 1 >= item.size()) {
      usage_and_exit("targets must be host:port[,host:port...]");
    }
    dr::ingress::LoadGenTarget t;
    t.host = item.substr(0, colon);
    t.port = static_cast<std::uint16_t>(
        std::strtoul(item.c_str() + colon + 1, nullptr, 10));
    if (t.port == 0) usage_and_exit("target port must be non-zero");
    out.push_back(std::move(t));
    pos = comma + 1;
  }
  return out;
}

Args parse(int argc, char** argv) {
  Args a;
  a.gen.duration_ms = 5'000;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_and_exit(flag);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--targets")) {
      a.targets = parse_targets(need("--targets needs host:port list"));
    } else if (!std::strcmp(argv[i], "--self-cluster")) {
      a.self_cluster_n = static_cast<std::uint32_t>(
          std::strtoul(need("--self-cluster needs N"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--clients")) {
      a.gen.clients = std::strtoull(need("--clients needs K"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--connections")) {
      a.gen.connections = static_cast<std::size_t>(
          std::strtoull(need("--connections needs C"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--rate")) {
      a.gen.rate_tps = std::strtod(need("--rate needs TPS"), nullptr);
    } else if (!std::strcmp(argv[i], "--duration")) {
      a.gen.duration_ms =
          std::strtoull(need("--duration needs MS"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--payload")) {
      a.gen.payload_bytes = static_cast<std::size_t>(
          std::strtoull(need("--payload needs BYTES"), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--zipf")) {
      a.gen.zipf_s = std::strtod(need("--zipf needs S"), nullptr);
    } else if (!std::strcmp(argv[i], "--churn")) {
      a.gen.churn_period_ms =
          std::strtoull(need("--churn needs MS"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed")) {
      a.gen.seed = std::strtoull(need("--seed needs S"), nullptr, 10);
    } else {
      usage_and_exit("unknown argument");
    }
  }
  if (a.targets.empty() == (a.self_cluster_n == 0)) {
    usage_and_exit("pick exactly one of --targets / --self-cluster");
  }
  return a;
}

void print_report(const dr::ingress::LoadGenReport& r,
                  const dr::ingress::LoadGenOptions& o) {
  const double secs =
      r.elapsed_ms > 0 ? static_cast<double>(r.elapsed_ms) / 1000.0 : 1.0;
  std::printf("loadgen: %llu clients over %zu conns, %.0f tps target, "
              "zipf %.2f, seed %llu\n",
              static_cast<unsigned long long>(o.clients), o.connections,
              o.rate_tps, o.zipf_s,
              static_cast<unsigned long long>(o.seed));
  std::printf("  submitted    %12llu  (%.0f/s)\n",
              static_cast<unsigned long long>(r.submitted),
              static_cast<double>(r.submitted) / secs);
  std::printf("  accepted     %12llu\n",
              static_cast<unsigned long long>(r.accepted));
  std::printf("  acked        %12llu  (%.0f/s)\n",
              static_cast<unsigned long long>(r.acked),
              static_cast<double>(r.acked) / secs);
  std::printf("  busy         %12llu\n",
              static_cast<unsigned long long>(r.busy));
  std::printf("  dup pending  %12llu\n",
              static_cast<unsigned long long>(r.dup_pending));
  std::printf("  dup commit   %12llu\n",
              static_cast<unsigned long long>(r.dup_committed));
  std::printf("  shard full   %12llu\n",
              static_cast<unsigned long long>(r.shard_full));
  std::printf("  resubmitted  %12llu\n",
              static_cast<unsigned long long>(r.resubmitted));
  std::printf("  local b.p.   %12llu\n",
              static_cast<unsigned long long>(r.local_backpressure));
  std::printf("  overload     %12llu\n",
              static_cast<unsigned long long>(r.overload_skips));
  std::printf("  churn events %12llu\n",
              static_cast<unsigned long long>(r.churn_events));
  std::printf("  conn fails   %12llu\n",
              static_cast<unsigned long long>(r.connect_failures));
  std::printf("  outstanding  %12llu  (at end of drain)\n",
              static_cast<unsigned long long>(r.outstanding_at_end));
  if (r.ack_latency_ms.count() > 0) {
    std::printf("  ack latency  p50 %.2f ms   p90 %.2f ms   p99 %.2f ms\n",
                r.ack_latency_ms.percentile(0.50),
                r.ack_latency_ms.percentile(0.90),
                r.ack_latency_ms.percentile(0.99));
  }
  std::printf("  elapsed      %12llu ms\n",
              static_cast<unsigned long long>(r.elapsed_ms));
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);

  // Self-cluster mode: an in-process ingress-enabled TCP cluster to aim at.
  std::unique_ptr<dr::node::Cluster> cluster;
  if (args.self_cluster_n != 0) {
    dr::node::NodeOptions nopts;
    nopts.seed = 7;
    nopts.ingress_enable = true;
    dr::node::ClusterTweaks tweaks;
    tweaks.tcp_transport = true;
    cluster = std::make_unique<dr::node::Cluster>(
        dr::Committee::for_n(args.self_cluster_n), nopts, std::move(tweaks));
    cluster->start();
    for (dr::ProcessId pid = 0; pid < args.self_cluster_n; ++pid) {
      args.gen.targets.push_back(
          dr::ingress::LoadGenTarget{"127.0.0.1", cluster->ingress_port(pid)});
    }
  } else {
    args.gen.targets = args.targets;
  }

  dr::ingress::LoadGen gen(args.gen);
  if (!gen.start()) {
    std::fprintf(stderr, "loadgen: failed to start driver\n");
    return 1;
  }
  const dr::ingress::LoadGenReport report = gen.wait_and_report();

  bool clean = true;
  if (cluster) {
    cluster->stop();
    const auto violation = dr::core::audit_logs(cluster->delivered_logs(),
                                                cluster->commit_logs());
    clean = !violation.has_value();
    if (!clean) {
      std::fprintf(stderr, "loadgen: cluster audit FAILED: %s\n",
                   violation->c_str());
    }
  }

  if (!report.ok) {
    std::fprintf(stderr, "loadgen: %s\n",
                 report.error.empty() ? "run failed" : report.error.c_str());
    return 1;
  }
  print_report(report, args.gen);
  if (report.acked == 0) {
    std::fprintf(stderr, "loadgen: no transaction was ever acked\n");
    return 1;
  }
  return clean ? 0 : 1;
}
