#!/usr/bin/env python3
"""Deterministic format gate: the mechanical subset of .clang-format that
needs no clang toolchain, so it runs identically on a developer laptop and
in CI. clang-format (the full reflow) runs in CI where LLVM is installed;
this checker keeps the invariants a formatter run must never reintroduce:

  - no tab characters in C++ sources
  - no trailing whitespace
  - no CRLF line endings
  - every file ends with exactly one newline
  - no line longer than 100 columns (matches ColumnLimit in .clang-format)

Exit 0 when clean, 1 with findings, 2 on usage error. With --fix, rewrites
the mechanical violations in place (tabs are left alone: they need a human
to pick the right indent).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

MAX_COLS = 100
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}


def iter_sources(roots: list[Path]):
    for root in roots:
        if root.is_file():
            yield root
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def check_file(path: Path, fix: bool) -> list[str]:
    raw = path.read_bytes()
    findings: list[str] = []
    text = raw.decode("utf-8", errors="replace")

    if "\r" in text:
        findings.append(f"{path}: CRLF/CR line endings")
    lines = text.split("\n")
    # split("\n") leaves a trailing "" exactly when the file ends in \n.
    body = lines[:-1] if lines and lines[-1] == "" else lines
    for i, line in enumerate(body, start=1):
        stripped = line.rstrip("\r")
        if "\t" in stripped:
            findings.append(f"{path}:{i}: tab character")
        if stripped != stripped.rstrip():
            findings.append(f"{path}:{i}: trailing whitespace")
        if len(stripped) > MAX_COLS:
            findings.append(f"{path}:{i}: line is {len(stripped)} cols (max {MAX_COLS})")
    if raw and not raw.endswith(b"\n"):
        findings.append(f"{path}: missing final newline")
    if raw.endswith(b"\n\n"):
        findings.append(f"{path}: multiple final newlines")

    if fix and findings:
        fixed = "\n".join(l.rstrip() for l in body).rstrip("\n") + "\n"
        path.write_text(fixed, encoding="utf-8")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument("--fix", action="store_true",
                        help="rewrite whitespace/newline violations in place")
    args = parser.parse_args(argv)

    for p in args.paths:
        if not p.exists():
            print(f"formatcheck: no such path: {p}", file=sys.stderr)
            return 2

    findings: list[str] = []
    count = 0
    for path in iter_sources(args.paths):
        count += 1
        findings.extend(check_file(path, args.fix))
    for f in findings:
        print(f)
    verdict = "fixed" if args.fix else "finding(s)"
    print(f"formatcheck: {count} files, {len(findings)} {verdict}")
    return 1 if findings and not args.fix else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
