#!/usr/bin/env python3
"""daglint self-test: seeds one deliberate violation per rule class and
asserts the checker flags it (and stays quiet on the clean twin). Run via
ctest (`daglint_selftest`) or directly: python3 tools/daglint/test_daglint.py
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import daglint  # noqa: E402


def lint_snippet(relpath: str, code: str, rules=None):
    """Writes `code` at `relpath` under a temp tree and lints it."""
    with tempfile.TemporaryDirectory() as tmp:
        f = Path(tmp) / relpath
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(code, encoding="utf-8")
        active = set(rules) if rules else set(daglint.ALL_RULES)
        return daglint.check_file(f, code, active)


def rules_of(findings):
    return {f.rule for f in findings}


class QuorumArith(unittest.TestCase):
    def test_inline_2f_plus_1_flagged(self):
        findings = lint_snippet(
            "src/rbc/bad.cpp",
            "void f(Committee c) {\n"
            "  if (echoes.size() >= 2 * c.f + 1) deliver();\n"
            "}\n")
        self.assertIn("quorum-arith", rules_of(findings))

    def test_off_by_one_small_quorum_flagged(self):
        findings = lint_snippet(
            "src/core/bad.cpp",
            "bool ok(std::size_t readies, uint32_t f) {\n"
            "  return readies >= f + 1;\n"
            "}\n")
        self.assertIn("quorum-arith", rules_of(findings))

    def test_named_helpers_clean(self):
        findings = lint_snippet(
            "src/rbc/good.cpp",
            "void f(Committee c) {\n"
            "  if (echoes.size() >= c.quorum()) deliver();\n"
            "  if (readies.size() >= c.small_quorum()) ready();\n"
            "  if (shares.size() >= weak_quorum_f1(c.n)) reveal();\n"
            "}\n")
        self.assertEqual(rules_of(findings), set())

    def test_types_hpp_definition_site_exempt(self):
        findings = lint_snippet(
            "src/common/types.hpp",
            "constexpr std::uint32_t quorum() const { return 2 * f + 1; }\n")
        self.assertEqual(rules_of(findings), set())

    def test_comments_not_flagged(self):
        findings = lint_snippet(
            "src/rbc/doc.cpp",
            "// on 2f+1 ECHO(m): READY(m) to all; amplification at f + 1 <= n\n"
            "/* quorum is 2 * f + 1 by Lemma 4 */\n")
        self.assertEqual(rules_of(findings), set())


class ThreadPrimitive(unittest.TestCase):
    def test_mutex_in_protocol_code_flagged(self):
        findings = lint_snippet(
            "src/dag/bad.hpp",
            "class Builder {\n  std::mutex mu_;\n};\n")
        self.assertIn("thread-primitive", rules_of(findings))

    def test_mutex_in_net_allowed(self):
        findings = lint_snippet(
            "src/net/inbox.hpp",
            "class Inbox {\n  mutable std::mutex mu_;\n"
            "  std::condition_variable cv_;\n};\n")
        self.assertEqual(rules_of(findings), set())

    def test_atomic_in_node_allowed(self):
        findings = lint_snippet(
            "src/node/node.hpp",
            "std::atomic<bool> running_{false};\n")
        self.assertEqual(rules_of(findings), set())


class BlockingCall(unittest.TestCase):
    def test_sleep_in_rbc_flagged(self):
        findings = lint_snippet(
            "src/rbc/bad.cpp",
            "void on_message() {\n"
            "  std::this_thread::sleep_for(std::chrono::seconds(1));\n}\n")
        self.assertIn("blocking-call", rules_of(findings))

    def test_cv_wait_in_core_flagged(self):
        findings = lint_snippet(
            "src/core/bad.cpp",
            "void f() { cv.wait(lk, [] { return done; }); }\n")
        self.assertIn("blocking-call", rules_of(findings))

    def test_raw_recv_in_dag_flagged(self):
        findings = lint_snippet(
            "src/dag/bad.cpp",
            "ssize_t k = ::recv(fd, buf, len, 0);\n")
        self.assertIn("blocking-call", rules_of(findings))

    def test_recv_in_net_allowed(self):
        findings = lint_snippet(
            "src/net/tcp.cpp",
            "const ssize_t k = ::recv(fd, data + off, len - off, 0);\n")
        self.assertNotIn("blocking-call", rules_of(findings))


class RawRandom(unittest.TestCase):
    def test_rand_flagged(self):
        findings = lint_snippet(
            "src/coin/bad.cpp",
            "uint64_t coin() { return rand() % 2; }\n")
        self.assertIn("raw-random", rules_of(findings))

    def test_random_device_flagged(self):
        findings = lint_snippet(
            "src/sim/bad.cpp",
            "std::mt19937 rng{std::random_device{}()};\n")
        self.assertIn("raw-random", rules_of(findings))

    def test_seeded_xoshiro_clean(self):
        findings = lint_snippet(
            "src/sim/good.cpp",
            "Xoshiro256 rng(seed);\nstd::mt19937 engine(seed);\n")
        self.assertEqual(rules_of(findings), set())


class NodiscardDecode(unittest.TestCase):
    def test_unattributed_bool_decode_flagged(self):
        findings = lint_snippet(
            "src/app/bad.hpp",
            "static bool decode(BytesView data, KvCommand& out);\n")
        self.assertIn("nodiscard-decode", rules_of(findings))

    def test_expected_return_accepted_via_class_attribute(self):
        # Expected<T> is a [[nodiscard]] class; the compiler enforces
        # consumption, so the declaration needs no extra attribute.
        findings = lint_snippet(
            "src/net/good.hpp",
            "Expected<Handshake> decode_handshake(BytesView data);\n")
        self.assertEqual(rules_of(findings), set())

    def test_attributed_decode_clean(self):
        findings = lint_snippet(
            "src/net/good.hpp",
            "[[nodiscard]] Expected<Handshake> decode_handshake(BytesView d);\n")
        self.assertEqual(rules_of(findings), set())

    def test_attribute_on_previous_line_clean(self):
        findings = lint_snippet(
            "src/dag/good.hpp",
            "[[nodiscard]]\nstatic Expected<Vertex> deserialize(BytesView data);\n")
        self.assertEqual(rules_of(findings), set())

    def test_out_of_line_definition_exempt(self):
        findings = lint_snippet(
            "src/dag/good.cpp",
            "Expected<Vertex> Vertex::deserialize(BytesView data) {\n"
            "  return parse(data);\n}\n")
        self.assertEqual(rules_of(findings), set())


class Suppression(unittest.TestCase):
    def test_allow_comment_suppresses(self):
        findings = lint_snippet(
            "src/rbc/special.cpp",
            "if (n >= 2 * f + 1) {}  // daglint: allow(quorum-arith)\n")
        self.assertEqual(rules_of(findings), set())

    def test_allow_of_other_rule_does_not_suppress(self):
        findings = lint_snippet(
            "src/rbc/special.cpp",
            "if (n >= 2 * f + 1) {}  // daglint: allow(raw-random)\n")
        self.assertIn("quorum-arith", rules_of(findings))


class FileIo(unittest.TestCase):
    def test_fstream_in_core_flagged(self):
        findings = lint_snippet(
            "src/core/dag_rider.cpp",
            '#include <fstream>\nstd::ofstream log("rider.log");\n')
        self.assertIn("file-io", rules_of(findings))

    def test_fopen_in_node_flagged(self):
        findings = lint_snippet(
            "src/node/node.cpp",
            'FILE* f = std::fopen("wal.bin", "ab");\n')
        self.assertIn("file-io", rules_of(findings))

    def test_std_filesystem_in_dag_flagged(self):
        findings = lint_snippet(
            "src/dag/builder.cpp",
            "std::filesystem::resize_file(p, n);\n")
        self.assertIn("file-io", rules_of(findings))

    def test_storage_dir_allowed(self):
        findings = lint_snippet(
            "src/storage/store.cpp",
            'FILE* f = std::fopen("wal.bin", "ab");\n'
            "std::filesystem::resize_file(p, n);\n")
        self.assertEqual(rules_of(findings), set())


class PayloadHash(unittest.TestCase):
    def test_bare_sha256_in_rbc_flagged(self):
        findings = lint_snippet(
            "src/rbc/bad.cpp",
            "void on_echo(BytesView blob) {\n"
            "  const auto d = crypto::sha256(blob);\n}\n")
        self.assertIn("payload-hash", rules_of(findings))

    def test_unqualified_sha256_in_node_flagged(self):
        findings = lint_snippet(
            "src/node/bad.cpp",
            "using namespace crypto;\nauto d = sha256(block);\n")
        self.assertIn("payload-hash", rules_of(findings))

    def test_sha256_tagged_exempt(self):
        # Domain-separated transcript hashing, not a payload re-hash.
        findings = lint_snippet(
            "src/rbc/good.cpp",
            'auto d = crypto::sha256_tagged("gossip-id", blob);\n')
        self.assertEqual(rules_of(findings), set())

    def test_crypto_dir_exempt(self):
        findings = lint_snippet(
            "src/crypto/merkle.cpp",
            "auto h = crypto::sha256(concat);\n")
        self.assertEqual(rules_of(findings), set())

    def test_allowlisted_codec_boundary_exempt(self):
        findings = lint_snippet(
            "src/net/payload.cpp",
            "rep_->digest_memo = crypto::sha256(view());\n")
        self.assertEqual(rules_of(findings), set())

    def test_payload_digest_call_clean(self):
        findings = lint_snippet(
            "src/node/good.cpp",
            "const crypto::Digest d = payload.digest();\n")
        self.assertEqual(rules_of(findings), set())

    def test_allow_comment_suppresses(self):
        findings = lint_snippet(
            "src/core/special.cpp",
            "auto d = crypto::sha256(b);  // daglint: allow(payload-hash)\n")
        self.assertEqual(rules_of(findings), set())


class IngressBlocking(unittest.TestCase):
    def test_raw_recv_in_ingress_server_flagged(self):
        findings = lint_snippet(
            "src/ingress/server.cpp",
            "ssize_t n = ::recv(fd, buf, len, 0);\n")
        self.assertIn("ingress-blocking", rules_of(findings))

    def test_sleep_in_ingress_client_flagged(self):
        findings = lint_snippet(
            "src/ingress/client.cpp",
            "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n")
        self.assertIn("ingress-blocking", rules_of(findings))

    def test_cv_wait_in_ingress_flagged(self):
        findings = lint_snippet(
            "src/ingress/loadgen.cpp",
            "cv.wait(lk, [] { return done; });\n")
        self.assertIn("ingress-blocking", rules_of(findings))

    def test_sockets_cpp_is_the_sanctioned_site(self):
        findings = lint_snippet(
            "src/ingress/sockets.cpp",
            "ssize_t n = ::recv(fd, buf, len, MSG_DONTWAIT);\n"
            "ssize_t m = ::send(fd, buf, len, MSG_DONTWAIT);\n")
        self.assertNotIn("ingress-blocking", rules_of(findings))

    def test_wrapper_and_member_calls_clean(self):
        # sock:: wrappers and qualified member definitions must not hit the
        # raw-syscall pattern.
        findings = lint_snippet(
            "src/ingress/good.cpp",
            "auto io = sock::recv_some(fd, buf, len, got);\n"
            "bool Client::connect(int timeout_ms) { return true; }\n"
            "sock::poll_fds(pfds.data(), pfds.size(), 1);\n")
        self.assertEqual(rules_of(findings), set())

    def test_outside_ingress_out_of_scope(self):
        findings = lint_snippet(
            "src/net/tcp.cpp",
            "ssize_t n = ::recv(fd, buf, len, 0);\n")
        self.assertNotIn("ingress-blocking", rules_of(findings))

    def test_allow_comment_suppresses(self):
        findings = lint_snippet(
            "src/ingress/special.cpp",
            "::recv(fd, b, n, 0);  // daglint: allow(ingress-blocking)\n")
        self.assertEqual(rules_of(findings), set())

    def test_thread_primitives_allowed_in_ingress(self):
        # src/ingress/ is a sanctioned concurrency boundary like net/node.
        findings = lint_snippet(
            "src/ingress/server.hpp",
            "std::mutex acks_mu_;\nstd::atomic<bool> running_{false};\n")
        self.assertEqual(rules_of(findings), set())


class ChaosSeeded(unittest.TestCase):
    def test_literal_seeded_rng_in_chaos_file_flagged(self):
        findings = lint_snippet(
            "src/net/chaos_extra.cpp",
            "Xoshiro256 rng(42);\n")
        self.assertIn("chaos-seeded", rules_of(findings))

    def test_state_seeded_temporary_in_soak_file_flagged(self):
        findings = lint_snippet(
            "src/node/soak_util.cpp",
            "const double u = unit(SplitMix64(counter_++));\n")
        self.assertIn("chaos-seeded", rules_of(findings))

    def test_seed_derived_rng_clean(self):
        findings = lint_snippet(
            "src/net/chaos.cpp",
            "Xoshiro256 rng(seed ^ 0xC0A05EEDULL);\n"
            "SplitMix64 h(opts.seed ^ kSoakSeedTweak);\n")
        self.assertEqual(rules_of(findings), set())

    def test_member_declaration_without_ctor_clean(self):
        findings = lint_snippet(
            "src/net/chaos.hpp",
            "class X {\n  SplitMix64 rng_;\n  void f(SplitMix64& h);\n};\n")
        self.assertEqual(rules_of(findings), set())

    def test_non_chaos_file_out_of_scope(self):
        findings = lint_snippet(
            "src/sim/delay.cpp",
            "Xoshiro256 rng(42);\n")
        self.assertNotIn("chaos-seeded", rules_of(findings))

    def test_allow_comment_suppresses(self):
        findings = lint_snippet(
            "src/net/chaos_fixture.cpp",
            "Xoshiro256 rng(7);  // daglint: allow(chaos-seeded)\n")
        self.assertEqual(rules_of(findings), set())


class StripComments(unittest.TestCase):
    def test_line_numbers_preserved(self):
        text = "int a;\n/* two\nline comment */\nstd::mutex bad;\n"
        findings = lint_snippet("src/core/f.cpp", text)
        self.assertEqual([(f.rule, f.line) for f in findings],
                         [("thread-primitive", 4)])

    def test_string_literals_ignored(self):
        findings = lint_snippet(
            "src/core/f.cpp",
            'const char* s = "2 * f + 1 std::mutex rand()";\n')
        self.assertEqual(rules_of(findings), set())


class TreeIsClean(unittest.TestCase):
    """The acceptance gate run by CI: the real tree has zero findings."""

    def test_src_tree_clean(self):
        repo = Path(__file__).resolve().parents[2]
        rc = daglint.main([str(repo / "src")])
        self.assertEqual(rc, 0, "daglint found violations in src/")


if __name__ == "__main__":
    unittest.main(verbosity=2)
