#!/usr/bin/env python3
"""daglint — protocol-aware static analysis for the DAG-Rider tree.

Encodes the mechanical invariants behind the paper's safety argument
(Lemmas 4-8 of "All You Need is DAG") as lint rules over the C++ sources,
so the classic DAG-BFT implementation slips — off-by-one quorums, stray
threading in protocol code, blocking calls inside handlers, nondeterministic
randomness — are caught at lint time, before TSan or the log auditors run.

Rules (each suppressible per line with `// daglint: allow(<rule>)`):

  quorum-arith      Quorum thresholds must go through the named helpers
                    (Committee::quorum(), Committee::small_quorum(),
                    quorum_2f1(n), weak_quorum_f1(n)) — never inline
                    arithmetic like `2 * f + 1` or `>= f + 1`. Off-by-one
                    quorums are the canonical DAG-BFT bug; one definition
                    site keeps Lemma 4's intersection argument auditable.
                    Exempt: src/common/types.hpp (the definition site).

  thread-primitive  No std::mutex / condition_variable / atomic / thread /
                    lock machinery outside src/net/ and src/node/. The
                    protocol layers (core/, dag/, rbc/, coin/, sim/, ...)
                    are single-threaded by construction — concurrency lives
                    only at the inbox/transport boundary (DESIGN.md §8).

  blocking-call     No sleep / .wait( / raw ::recv / ::send-on-sockets in
                    src/core/, src/dag/, src/rbc/, src/coin/ handlers.
                    Handlers run on the node event loop; one blocking call
                    stalls every protocol instance hosted by that node.

  raw-random        No rand()/srand()/std::random_device/time-seeded RNG in
                    src/. Every random bit must derive from an explicit
                    seed (common/rng.hpp) or the threshold coin — otherwise
                    runs stop replaying and the adversary model is unsound.

  nodiscard-decode  Fallible decoder/send-status declarations (deserialize,
                    decode*, pop_all, try_*) must be [[nodiscard]]: a
                    dropped decode result or send status silently swallows
                    Byzantine input. Functions returning Expected<T> are
                    accepted as-is — Expected is a [[nodiscard]] class, so
                    the compiler already enforces consumption at every call
                    site (that class attribute is itself this rule's anchor:
                    removing it reintroduces findings tree-wide).

  file-io           No filesystem access (fstream, fopen/fwrite/fread,
                    std::filesystem, raw ::open) outside src/storage/. The
                    WAL + snapshot store is the single durability point of
                    the node (DESIGN.md §10); scattered file I/O would put
                    crash-recovery state where replay can't see it and
                    blocking disk calls inside protocol handlers.

  payload-hash      No bare `crypto::sha256(` outside src/crypto/ and the
                    sanctioned codec boundary (sha256_allowlist.txt next to
                    this script, matched by path suffix). Payload bytes are
                    hashed exactly once and memoized on net::Payload
                    (DESIGN.md §11); a stray sha256 call re-hashes the same
                    buffer per protocol layer and silently unwinds the
                    single-hash discipline. Domain-separated helpers
                    (sha256_tagged, sha256_portable) are exempt: the first
                    hashes non-payload protocol transcripts, the second
                    exists only for backend cross-checks.

  ingress-blocking  No blocking socket syscalls (raw ::recv/::send/::accept/
                    ::connect/::poll/::select, sleeps, condition waits) in
                    src/ingress/ outside sockets.cpp. The ingress tier runs
                    one poll()-driven I/O thread over nonblocking fds
                    (DESIGN.md §13); ingress/sockets.{hpp,cpp} is the single
                    sanctioned raw-syscall site, and one blocking call
                    anywhere else stalls every client session on the node.

  chaos-seeded      In chaos/soak sources (any path component containing
                    "chaos" or "soak"), every RNG construction
                    (Xoshiro256, SplitMix64) must take an argument that
                    references a seed identifier. The chaos harness's
                    whole value is the seed-replay contract — a violating
                    run reproduces bit-identically from its printed seed
                    (DESIGN.md §12); one ad-hoc-seeded engine silently
                    voids that for every suite built on top.

Usage:
  daglint.py [--rules r1,r2] [--list-rules] PATH...
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}

ALLOW_RE = re.compile(r"//\s*daglint:\s*allow\(([a-z0-9_,\s-]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Lint patterns then match only real code. Newlines inside block comments
    and raw strings survive so reported line numbers stay exact.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":  # block comment
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and nxt == '"':  # raw string literal
            m = re.match(r'R"([^(\s]{0,16})\(', text[i:])
            if m:
                terminator = ")" + m.group(1) + '"'
                j = text.find(terminator, i + m.end())
                j = n - len(terminator) if j == -1 else j
                seg = text[i : j + len(terminator)]
                out.append("".join(ch if ch == "\n" else " " for ch in seg))
                i = j + len(terminator)
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":  # string / char literal
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            out.append(quote + " " * (j - i - 1) + (text[j] if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def rel(path: Path) -> str:
    """Path with forward slashes, for prefix matching against rule scopes."""
    return str(path.as_posix())


def in_dirs(path: Path, names) -> bool:
    parts = rel(path).split("/")
    return any(name in parts for name in names)


# --- rules -----------------------------------------------------------------

# Inline quorum arithmetic: `2 * f + 1`, `2*f+1`, `3 * f`, or comparisons
# against `f + 1` where f is a fault-bound-looking identifier. Matches the
# committee fields (f, f_) and obvious aliases; plain loop variables named
# `i`/`k` do not hit.
QUORUM_PATTERNS = [
    re.compile(r"\b[23]\s*\*\s*(?:\w+[.\->]+)?f_?\b"),
    re.compile(r"[<>=]=?\s*(?:\w+[.\->]+)?f_?\s*\+\s*1\b"),
    re.compile(r"\b(?:\w+[.\->]+)?f_?\s*\+\s*1\s*[<>=]="),
]

THREAD_PATTERN = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|atomic\b|atomic<|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock|thread\b|jthread\b|future|promise|barrier|"
    r"latch|counting_semaphore|binary_semaphore)"
)

BLOCKING_PATTERNS = [
    (re.compile(r"\bsleep(_for|_until)?\s*\("), "sleep in a protocol handler"),
    (re.compile(r"\.\s*wait(_for|_until)?\s*\("), "blocking wait in a protocol handler"),
    (re.compile(r"::\s*recv\s*\("), "raw socket recv in protocol code"),
    (re.compile(r"::\s*accept\s*\("), "raw socket accept in protocol code"),
    (re.compile(r"\bpoll\s*\(\s*&"), "raw poll() in protocol code"),
]

RANDOM_PATTERNS = [
    (re.compile(r"\bs?rand\s*\(\s*\)"), "libc rand()/srand() is nondeterministic across platforms"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device breaks replayability"),
    (re.compile(r"\b(mt19937(_64)?|default_random_engine)\s*\w*\s*(\(|\{)\s*(std::)?(time|random_device|chrono)"),
     "time/entropy-seeded engine breaks replayability"),
]

# Function names whose results must never be dropped. A declaration is a line
# containing `<ret> <name>(`, where <ret> is Expected<...>, optional, or bool.
NODISCARD_NAMES = re.compile(r"\b(deserialize(_from)?|decode\w*|pop_all|try_\w+)\s*\(")
# Out-of-line definitions (`Type Class::fn(...)`) inherit the attribute from
# the in-class declaration; requiring it again would be GCC-invalid.
NODISCARD_QUALIFIED_DEF = re.compile(r"\w+::(deserialize(_from)?|decode\w*|pop_all|try_\w+)\s*\(")
NODISCARD_RET = re.compile(
    r"^\s*(static\s+|virtual\s+)*(std::optional<|bool\b|std::size_t\b)"
)
NODISCARD_ATTR = "[[nodiscard]]"

FILE_IO_PATTERNS = [
    (re.compile(r"\bstd::(o|i)?fstream\b"), "iostream file handle"),
    (re.compile(r"\bf(open|reopen|write|read|close|flush|sync)\s*\("),
     "stdio file call"),
    (re.compile(r"\bstd::filesystem\b"), "std::filesystem access"),
    (re.compile(r"::\s*open\s*\("), "raw open() syscall"),
]

# Bare one-shot hash of a payload: `crypto::sha256(...)` or an unqualified
# `sha256(...)` (inside-namespace call). The trailing `\(` keeps the exempt
# helpers (sha256_tagged, sha256_portable, sha256_backend) from matching.
SHA256_CALL = re.compile(r"(?<![\w:])(?:crypto\s*::\s*)?sha256\s*\(")

# RNG construction in chaos/soak code: `Xoshiro256 rng(...)`, `SplitMix64
# h(...)`, or a temporary `SplitMix64(...)`. References and bare member
# declarations (no constructor argument list) don't hit.
CHAOS_RNG_CTOR = re.compile(r"\b(?:Xoshiro256|SplitMix64)\b(?:\s+\w+)?\s*[({]")
CHAOS_SEED_REF = re.compile(r"seed", re.IGNORECASE)
CHAOS_MARKERS = ("chaos", "soak")

PROTOCOL_DIRS = ("core", "dag", "rbc", "coin")
CONCURRENCY_DIRS = ("net", "node", "ingress")
STORAGE_DIRS = ("storage",)
CRYPTO_DIRS = ("crypto",)

# Blocking primitives forbidden in src/ingress/ outside the sanctioned
# syscall site. Raw syscalls are written at global scope (`::recv(...)`), so
# the lookbehind keeps qualified member calls (Client::connect) from hitting.
INGRESS_DIRS = ("ingress",)
INGRESS_SOCKETS_SUFFIX = "ingress/sockets.cpp"
INGRESS_BLOCKING_PATTERNS = [
    (re.compile(r"(?<![\w:])::\s*(recv|send|sendto|recvfrom|accept4?|connect|"
                r"read|write|poll|ppoll|select|epoll_wait)\s*\("),
     "raw socket/syscall"),
    (re.compile(r"\bsleep(_for|_until)?\s*\("), "sleep"),
    (re.compile(r"\.\s*wait(_for|_until)?\s*\("), "blocking wait"),
]

SHA256_ALLOWLIST_FILE = Path(__file__).resolve().parent / "sha256_allowlist.txt"
_sha256_allowlist_cache: list[str] | None = None


def sha256_allowlist() -> list[str]:
    """Path suffixes where a bare crypto::sha256( call is sanctioned."""
    global _sha256_allowlist_cache
    if _sha256_allowlist_cache is None:
        entries: list[str] = []
        if SHA256_ALLOWLIST_FILE.is_file():
            for raw in SHA256_ALLOWLIST_FILE.read_text(encoding="utf-8").splitlines():
                entry = raw.strip()
                if entry and not entry.startswith("#"):
                    entries.append(entry)
        _sha256_allowlist_cache = entries
    return _sha256_allowlist_cache


def check_file(path: Path, text: str, rules) -> list[Finding]:
    findings: list[Finding] = []
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()

    def allowed(lineno: int, rule: str) -> bool:
        if lineno - 1 >= len(raw_lines):
            return False
        m = ALLOW_RE.search(raw_lines[lineno - 1])
        if not m:
            return False
        allowed_rules = {r.strip() for r in m.group(1).split(",")}
        return rule in allowed_rules

    def report(lineno: int, rule: str, message: str):
        if rule in rules and not allowed(lineno, rule):
            findings.append(Finding(path, lineno, rule, message))

    is_types_hpp = rel(path).endswith("common/types.hpp")
    is_chaos_code = any(
        marker in part
        for part in rel(path).lower().split("/") for marker in CHAOS_MARKERS)
    in_protocol = in_dirs(path, PROTOCOL_DIRS)
    in_concurrency = in_dirs(path, CONCURRENCY_DIRS)
    in_storage = in_dirs(path, STORAGE_DIRS)
    in_ingress_unsanctioned = (in_dirs(path, INGRESS_DIRS) and
                               not rel(path).endswith(INGRESS_SOCKETS_SUFFIX))
    sha256_sanctioned = in_dirs(path, CRYPTO_DIRS) or any(
        rel(path).endswith(entry) for entry in sha256_allowlist())

    for idx, line in enumerate(code_lines, start=1):
        if not is_types_hpp:
            for pat in QUORUM_PATTERNS:
                if pat.search(line):
                    report(idx, "quorum-arith",
                           "inline quorum arithmetic; use Committee::quorum(), "
                           "Committee::small_quorum(), quorum_2f1(n), or "
                           "weak_quorum_f1(n) (Lemma 4 quorum intersection)")
                    break
        if not in_concurrency and THREAD_PATTERN.search(line):
            report(idx, "thread-primitive",
                   "threading primitive outside src/net//src/node/; protocol "
                   "code is single-threaded by construction (DESIGN.md §8)")
        if in_protocol:
            for pat, msg in BLOCKING_PATTERNS:
                if pat.search(line):
                    report(idx, "blocking-call", msg)
                    break
        for pat, msg in RANDOM_PATTERNS:
            if pat.search(line):
                report(idx, "raw-random", msg)
                break
        if not in_storage:
            for pat, msg in FILE_IO_PATTERNS:
                if pat.search(line):
                    report(idx, "file-io",
                           msg + " outside src/storage/; all durability goes "
                           "through the WAL + snapshot store (DESIGN.md §10)")
                    break
        if not sha256_sanctioned and SHA256_CALL.search(line):
            report(idx, "payload-hash",
                   "bare crypto::sha256() outside src/crypto/ and the codec "
                   "boundary; consume the memoized net::Payload::digest() "
                   "(single-hash discipline, DESIGN.md §11) or add this file "
                   "to tools/daglint/sha256_allowlist.txt")
        if in_ingress_unsanctioned:
            for pat, msg in INGRESS_BLOCKING_PATTERNS:
                if pat.search(line):
                    report(idx, "ingress-blocking",
                           msg + " in src/ingress/ outside sockets.cpp; the "
                           "ingress I/O thread must stay nonblocking "
                           "(DESIGN.md §13) — go through the ingress/"
                           "sockets.hpp wrappers")
                    break
        if is_chaos_code:
            m = CHAOS_RNG_CTOR.search(line)
            if m and not CHAOS_SEED_REF.search(line[m.end():]):
                report(idx, "chaos-seeded",
                       "RNG constructed in chaos/soak code without a seed "
                       "argument; every fault decision must be a pure "
                       "function of the plan seed or the run would stop "
                       "replaying (seed-replay contract, DESIGN.md §12)")
        if (NODISCARD_NAMES.search(line) and NODISCARD_RET.search(line) and
                not NODISCARD_QUALIFIED_DEF.search(line)):
            has_attr = NODISCARD_ATTR in line or (
                idx >= 2 and NODISCARD_ATTR in code_lines[idx - 2])
            # Call sites (obj.decode(...)) don't match NODISCARD_RET, so this
            # only fires on declarations/definitions.
            if not has_attr:
                report(idx, "nodiscard-decode",
                       "fallible decode/status function must be [[nodiscard]]: "
                       "a dropped result silently swallows Byzantine input")
    return findings


ALL_RULES = (
    "quorum-arith",
    "thread-primitive",
    "blocking-call",
    "raw-random",
    "nodiscard-decode",
    "file-io",
    "payload-hash",
    "ingress-blocking",
    "chaos-seeded",
)


def iter_sources(paths):
    for p in paths:
        p = Path(p)
        if p.is_file():
            if p.suffix in CPP_SUFFIXES:
                yield p
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CPP_SUFFIXES and f.is_file():
                    yield f
        else:
            print(f"daglint: no such path: {p}", file=sys.stderr)
            sys.exit(2)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--rules", help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in ALL_RULES:
            print(r)
        return 0
    if not args.paths:
        ap.error("at least one PATH required")

    rules = set(ALL_RULES)
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",")}
        unknown = rules - set(ALL_RULES)
        if unknown:
            print(f"daglint: unknown rules: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    findings: list[Finding] = []
    nfiles = 0
    for f in iter_sources(args.paths):
        nfiles += 1
        try:
            text = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            print(f"daglint: cannot read {f}: {e}", file=sys.stderr)
            return 2
        findings.extend(check_file(f, text, rules))

    for fi in findings:
        print(fi)
    summary = f"daglint: {nfiles} files, {len(findings)} finding(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
